package hap

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"testing"

	"hap/internal/cluster"
	"hap/internal/cost"
	"hap/internal/models"
	"hap/internal/passes"
	"hap/internal/synth"
	"hap/internal/theory"
)

// The randomized differential harness: generate seeded random training
// graphs, synthesize a plan for each on several cluster shapes, and check
// the plan is semantically equivalent to the single-device graph
// (hap.Verify executes both on random data). This is the pipeline-wide
// correctness test: a bug anywhere in the theory rules, the synthesizer,
// the balancer, or the data-plane collectives surfaces as a mismatch.
//
// Reproduce a failure by pinning the reported seed:
//
//	go test -run TestDifferential -fuzz-seed 12345 -fuzz-graphs 1
var (
	fuzzSeed   = flag.Int64("fuzz-seed", 1, "base seed for the differential fuzz harness")
	fuzzGraphs = flag.Int("fuzz-graphs", 50, "number of random graphs the differential harness generates")
)

// randomTrainingGraph builds a random small MLP-family training graph:
// 1–3 matmul layers over a random batch and widths, with random activations
// (ReLU/Sigmoid/GeLU/Softmax), element-wise parameter interactions
// (Add/Mul), scaling, an optional two-branch fan-out with accumulation, and
// a full backward pass.
func randomTrainingGraph(t *testing.T, rng *rand.Rand) *Graph {
	t.Helper()
	g := NewGraph()
	b := []int{16, 32, 64}[rng.Intn(3)]
	f := 4 + rng.Intn(29)
	cur := g.AddPlaceholder("x", 0, b, f)

	layers := 1 + rng.Intn(3)
	for l := 0; l < layers; l++ {
		out := 4 + rng.Intn(29)
		if rng.Intn(4) == 0 {
			// Two-branch layer: y = act(x·w) ⊕ act'(x·w'), exercising fan-out
			// and gradient accumulation.
			w1 := g.AddParameter(fmt.Sprintf("w%da", l), f, out)
			w2 := g.AddParameter(fmt.Sprintf("w%db", l), f, out)
			h1 := randomActivation(g, rng, g.AddOp(MatMul, cur, w1))
			h2 := randomActivation(g, rng, g.AddOp(MatMul, cur, w2))
			cur = g.AddOp(Add, h1, h2)
		} else {
			w := g.AddParameter(fmt.Sprintf("w%d", l), f, out)
			cur = randomActivation(g, rng, g.AddOp(MatMul, cur, w))
			if rng.Intn(3) == 0 {
				// Element-wise interaction with a full-shape parameter.
				p := g.AddParameter(fmt.Sprintf("p%d", l), b, out)
				if rng.Intn(2) == 0 {
					cur = g.AddOp(Add, cur, p)
				} else {
					cur = g.AddOp(Mul, cur, p)
				}
			}
		}
		f = out
		if rng.Intn(4) == 0 {
			cur = g.AddScale(cur, 0.25+rng.Float64())
		}
	}
	g.SetLoss(g.AddOp(Sum, g.AddScale(cur, 1/float64(b))))
	if err := Backward(g); err != nil {
		t.Fatalf("Backward: %v", err)
	}
	return g
}

func randomActivation(g *Graph, rng *rand.Rand, id NodeID) NodeID {
	switch rng.Intn(5) {
	case 0:
		return g.AddOp(ReLU, id)
	case 1:
		return g.AddOp(Sigmoid, id)
	case 2:
		return g.AddOp(GeLU, id)
	case 3:
		return g.AddOp(Softmax, id)
	default:
		return id
	}
}

// fuzzClusters are the cluster shapes every random graph is planned on:
// heterogeneous across machines, homogeneous within one machine, and a
// three-machine mix with machine-level (multi-GPU) virtual devices.
func fuzzClusters() []*Cluster {
	return []*Cluster{
		PerGPU(MachineSpec{Type: V100, GPUs: 1}, MachineSpec{Type: P100, GPUs: 1}),
		PerGPU(MachineSpec{Type: P100, GPUs: 2}),
		Heterogeneous(MachineSpec{Type: V100, GPUs: 2}, MachineSpec{Type: P100, GPUs: 2}, MachineSpec{Type: P100, GPUs: 2}),
	}
}

// passesArm is the pass-pipeline-enabled arm of the differential harness:
// lower every all-reduce in the plan into its reduce-scatter + all-gather
// ring phases (modeling a backend that emits collectives per edge), check
// the lowered program still computes the graph, run the default pipeline,
// and check semantic equivalence is preserved and the modeled cost never
// increased — on every graph × cluster pair the harness generates.
func passesArm(t *testing.T, plan *Plan, c *cluster.Cluster, seed int64) {
	t.Helper()
	lowered := plan.Program.Clone()
	n, err := (passes.ExpandAllReduce{}).Run(lowered, c)
	if err != nil {
		t.Fatalf("ExpandAllReduce: %v", err)
	}
	loweredPlan := &Plan{Program: lowered, Ratios: plan.Ratios}
	if n > 0 {
		if err := Verify(loweredPlan, c.M(), seed); err != nil {
			t.Fatalf("lowered program is not equivalent to the graph: %v\n%s", err, lowered)
		}
	}
	loweredCost := cost.Evaluate(c, lowered, plan.Ratios)
	loweredComms := lowered.NumComms()

	st, err := passes.Default().Run(lowered, c)
	if err != nil {
		t.Fatalf("pass pipeline: %v\n%s", err, lowered)
	}
	if err := lowered.Validate(); err != nil {
		t.Fatalf("pipeline produced an ill-formed program: %v\n%s", err, lowered)
	}
	if err := Verify(loweredPlan, c.M(), seed); err != nil {
		t.Errorf("pipeline broke semantic equivalence (%d rewrites): %v\n%s", st.Changed, err, lowered)
	}
	optimizedCost := cost.Evaluate(c, lowered, plan.Ratios)
	if optimizedCost > loweredCost*(1+1e-9) {
		t.Errorf("pipeline increased modeled cost: %.9f → %.9f s\n%s", loweredCost, optimizedCost, lowered)
	}
	if lowered.NumComms() > loweredComms {
		t.Errorf("pipeline increased collective count: %d → %d", loweredComms, lowered.NumComms())
	}
}

func TestDifferentialRandomGraphs(t *testing.T) {
	graphs := *fuzzGraphs
	if testing.Short() {
		graphs = 10
	}
	clusters := fuzzClusters()
	for i := 0; i < graphs; i++ {
		seed := *fuzzSeed + int64(i)
		rng := rand.New(rand.NewSource(seed))
		g := randomTrainingGraph(t, rng)
		// Per-segment sharding ratios for some multi-layer graphs.
		segments := 1
		if g.ForwardCount >= 6 && rng.Intn(2) == 0 {
			segments = 2
		}
		for ci, c := range clusters {
			c := c
			t.Run(fmt.Sprintf("seed=%d/cluster=%d/segments=%d", seed, ci, segments), func(t *testing.T) {
				plan, err := Parallelize(g, c, Options{Segments: segments})
				if err != nil {
					t.Fatalf("Parallelize on\n%s: %v", g, err)
				}
				if plan.Cost <= 0 || len(plan.Program.Instrs) == 0 {
					t.Fatalf("degenerate plan (cost %v, %d instrs)", plan.Cost, len(plan.Program.Instrs))
				}
				if err := plan.Program.Validate(); err != nil {
					t.Fatalf("ill-formed program: %v\n%s", err, plan.Program)
				}
				if err := Verify(plan, c.M(), seed); err != nil {
					t.Errorf("synthesized program is not equivalent to the graph: %v\ngraph:\n%s\nprogram:\n%s",
						err, g, plan.Program)
				}
				passesArm(t, plan, c, seed)
				seededArm(t, g, plan, c, segments, seed)
			})
		}
	}
}

// seededArm re-plans the graph seeded from its own cold plan. A distance-0
// donor replays completely, so the seeded plan must stay verification-clean
// and cost no more than the cold one — on every graph × cluster pair the
// harness generates. Graphs small enough for exact A* exercise the
// seed-ignored path instead (the planner must not report them seeded).
func seededArm(t *testing.T, g *Graph, cold *Plan, c *cluster.Cluster, segments int, seed int64) {
	t.Helper()
	plan, err := Parallelize(g, c, Options{Segments: segments, SeedGraph: g, SeedPlan: cold})
	if err != nil {
		t.Fatalf("seeded Parallelize: %v", err)
	}
	if err := plan.Program.Validate(); err != nil {
		t.Fatalf("seeded program ill-formed: %v\n%s", err, plan.Program)
	}
	if err := Verify(plan, c.M(), seed); err != nil {
		t.Errorf("seeded program is not equivalent to the graph: %v\n%s", err, plan.Program)
	}
	if plan.Cost > cold.Cost*(1+1e-9) {
		t.Errorf("seeded plan cost %v worse than cold %v", plan.Cost, cold.Cost)
	}
	if plan.Seeded {
		if plan.SeedDistance != 0 {
			t.Errorf("self-seeded plan reports distance %v, want 0", plan.SeedDistance)
		}
		// A full replay re-emits the donor program; only the optimizer loop's
		// ratio rebalancing could differ, and it is deterministic too.
		if plan.Program.String() != cold.Program.String() {
			t.Errorf("self-seeded plan differs from its donor:\n%s\nvs cold:\n%s", plan.Program, cold.Program)
		}
	}
}

// TestDifferentialSeededVGG19 is the incremental-synthesis acceptance check
// at model topology scale: a one-layer-wider VGG19 planned seeded from the
// base VGG19's plan must report a real (non-zero) seed distance, stay
// well-formed, and model a cost no worse than planning the widened model
// cold. VGG19's conv ops are cost-only (no numeric kernel), so the numeric
// Verify arm for seeded plans lives in seededArm above and the serve-level
// incremental test, both on executable graphs. The image edge is scaled down
// (224 → 32) to keep the cold baseline synthesis quick; the topology — and
// hence the structural diff — is the same as the full-size model's.
func TestDifferentialSeededVGG19(t *testing.T) {
	c := PerGPU(MachineSpec{Type: V100, GPUs: 1}, MachineSpec{Type: P100, GPUs: 1})
	base := models.Training(models.VGG19(8, 32, 10))
	wide := models.Training(models.VGG19OneWider(8, 32, 10))

	cold, err := Parallelize(base, c, Options{})
	if err != nil {
		t.Fatalf("base VGG19: %v", err)
	}
	coldWide, err := Parallelize(wide, c, Options{})
	if err != nil {
		t.Fatalf("cold widened VGG19: %v", err)
	}

	plan, err := Parallelize(wide, c, Options{SeedGraph: base, SeedPlan: cold})
	if err != nil {
		t.Fatalf("seeded widened VGG19: %v", err)
	}
	if !plan.Seeded {
		t.Fatal("one-layer-wider VGG19 did not seed from the base plan")
	}
	if plan.SeedDistance <= 0 || plan.SeedDistance > 0.25 {
		t.Errorf("seed distance = %v, want in (0, 0.25]", plan.SeedDistance)
	}
	if err := plan.Program.Validate(); err != nil {
		t.Fatalf("seeded program ill-formed: %v", err)
	}
	if plan.Cost > coldWide.Cost*(1+1e-9) {
		t.Errorf("seeded cost %v worse than cold %v", plan.Cost, coldWide.Cost)
	}
}

// TestDifferentialParallelDeterminism checks the parallel beam's central
// guarantee on the same seeded random graphs the differential harness fuzzes
// with: Workers=4 and Workers=1 emit byte-identical disassembly on every
// graph × cluster pair. Run under -race (CI does) this also exercises the
// worker pool for data races on real workloads.
func TestDifferentialParallelDeterminism(t *testing.T) {
	graphs := 12
	if testing.Short() {
		graphs = 4
	}
	clusters := fuzzClusters()
	for i := 0; i < graphs; i++ {
		seed := *fuzzSeed + int64(i)
		rng := rand.New(rand.NewSource(seed))
		g := randomTrainingGraph(t, rng)
		th := theory.New(g)
		for ci, c := range clusters {
			t.Run(fmt.Sprintf("seed=%d/cluster=%d", seed, ci), func(t *testing.T) {
				b := cost.UniformRatios(g.NumSegments(), c.ProportionalRatios())
				// Force the beam (small graphs would pick exact A*, which is
				// always serial): width 24 matches the auto choice's regime.
				serial, sstats, err := synth.Synthesize(context.Background(), g, th, c, b, synth.Options{BeamWidth: 24, Workers: 1})
				if err != nil {
					t.Fatalf("workers=1: %v", err)
				}
				parallel, pstats, err := synth.Synthesize(context.Background(), g, th, c, b, synth.Options{BeamWidth: 24, Workers: 4})
				if err != nil {
					t.Fatalf("workers=4: %v", err)
				}
				if serial.String() != parallel.String() {
					t.Errorf("workers=4 emitted a different program:\n%s\nvs workers=1:\n%s", parallel, serial)
				}
				if sstats.Cost != pstats.Cost {
					t.Errorf("workers=4 cost %v != workers=1 cost %v", pstats.Cost, sstats.Cost)
				}
			})
		}
	}
}
