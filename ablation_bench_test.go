// Ablation benchmarks for the design choices DESIGN.md calls out: beam
// width vs plan quality, the communication-optimization rules, sufficient
// factor broadcasting, and the iterative Q↔B loop vs a single pass
// (AccPar-style "optimize each aspect once").
package hap

import (
	"context"
	"testing"

	"hap/internal/cluster"
	"hap/internal/cost"
	graphpkg "hap/internal/graph"
	"hap/internal/hapopt"
	"hap/internal/models"
	"hap/internal/synth"
	"hap/internal/theory"
)

func ablationGraphCluster() (*Graph, *Cluster) {
	cl := cluster.PaperHeterogeneous(1)
	cfg := models.BERTBase()
	cfg.Layers = 4
	cfg.Vocab = 8192
	g := models.Training(models.BERT(cfg, 64*cl.TotalGPUs()*32))
	return g, cl
}

// BenchmarkAblationBeamWidth sweeps the beam width and reports plan cost
// and search effort: wider beams buy (at most) slightly better plans for
// linearly more work.
func BenchmarkAblationBeamWidth(b *testing.B) {
	g, cl := ablationGraphCluster()
	th := theory.New(g)
	ratios := cost.UniformRatios(1, cl.ProportionalRatios())
	for _, width := range []int{8, 24, 48, 96} {
		b.Run(itoa(width), func(b *testing.B) {
			var stats synth.Stats
			for i := 0; i < b.N; i++ {
				_, s, err := synth.Synthesize(context.Background(), g, th, cl, ratios, synth.Options{BeamWidth: width})
				if err != nil {
					b.Fatal(err)
				}
				stats = s
			}
			b.ReportMetric(stats.Cost*1e3, "plan-ms")
			b.ReportMetric(float64(stats.Expansions), "expansions")
		})
	}
}

// BenchmarkAblationCommOpt compares synthesis with and without the grouped-
// Broadcast All-Gather implementation (the "C" of Fig. 15).
func BenchmarkAblationCommOpt(b *testing.B) {
	g, cl := ablationGraphCluster()
	th := theory.New(g)
	ratios := cost.UniformRatios(1, []float64{0.3, 0.3, 0.08, 0.08, 0.08, 0.08, 0.04, 0.04})
	for _, disabled := range []bool{false, true} {
		name := "with-grouped-broadcast"
		if disabled {
			name = "without"
		}
		b.Run(name, func(b *testing.B) {
			var stats synth.Stats
			for i := 0; i < b.N; i++ {
				_, s, err := synth.Synthesize(context.Background(), g, th, cl, ratios,
					synth.Options{BeamWidth: 48, DisableGroupedBroadcast: disabled})
				if err != nil {
					b.Fatal(err)
				}
				stats = s
			}
			b.ReportMetric(stats.Cost*1e3, "plan-ms")
		})
	}
}

// BenchmarkAblationSFB compares the data-parallel strategy space with and
// without the replicated-MatMul (SFB) rules on a small-batch FC model.
func BenchmarkAblationSFB(b *testing.B) {
	cl := cluster.FromGPUs(cluster.DefaultNetwork(),
		cluster.MachineSpec{Type: cluster.V100, GPUs: 1},
		cluster.MachineSpec{Type: cluster.V100, GPUs: 1},
		cluster.MachineSpec{Type: cluster.V100, GPUs: 1},
		cluster.MachineSpec{Type: cluster.V100, GPUs: 1})
	g := models.Training(models.MLP(8, 512, 512))
	// Restrict to the data-parallel space (batch-sharded inputs, replicated
	// parameters): SFB is a DP-space optimization; the unrestricted search
	// sidesteps it with zero-communication tensor parallelism.
	dp := theory.New(g).Filter(func(tr *theory.Triple) bool {
		for _, p := range tr.LeafPre {
			n := g.Node(p.Ref)
			switch n.Kind {
			case graphpkg.Placeholder:
				if !(p.Kind == theory.Gather && int(p.Dim) == n.BatchDim) {
					return false
				}
			case graphpkg.Parameter:
				if p.Kind != theory.Identity {
					return false
				}
			}
		}
		return true
	})
	ratios := cost.UniformRatios(1, cl.EvenRatios())
	for _, disabled := range []bool{false, true} {
		name := "with-sfb"
		if disabled {
			name = "without"
		}
		b.Run(name, func(b *testing.B) {
			var stats synth.Stats
			for i := 0; i < b.N; i++ {
				_, s, err := synth.Synthesize(context.Background(), g, dp, cl, ratios,
					synth.Options{BeamWidth: 32, DisableSFB: disabled})
				if err != nil {
					b.Fatal(err)
				}
				stats = s
			}
			b.ReportMetric(stats.Cost*1e6, "plan-us")
		})
	}
}

// BenchmarkAblationIterativeLoop compares one Q→B pass (the "optimize each
// aspect once" of prior work, Sec. 1) against HAP's alternation.
func BenchmarkAblationIterativeLoop(b *testing.B) {
	g, cl := ablationGraphCluster()
	for _, iters := range []int{1, 4} {
		b.Run(itoa(iters)+"-iterations", func(b *testing.B) {
			var res *hapopt.Result
			for i := 0; i < b.N; i++ {
				r, err := hapopt.Optimize(context.Background(), g, cl, hapopt.Options{MaxIterations: iters, Synth: synth.Auto()})
				if err != nil {
					b.Fatal(err)
				}
				res = r
			}
			b.ReportMetric(res.Cost*1e3, "plan-ms")
			b.ReportMetric(float64(res.Iters), "iters-used")
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
