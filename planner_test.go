package hap

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"hap/internal/dist"
	"hap/internal/graph"
	"hap/internal/models"
	"hap/internal/theory"
)

// The Planner is the primary API; Parallelize is a shim over it. Both must
// emit byte-identical plans for the same inputs.
func TestPlannerMatchesParallelize(t *testing.T) {
	c := testCluster()
	legacy, err := Parallelize(testGraph(t), c, Options{Segments: 2})
	if err != nil {
		t.Fatalf("Parallelize: %v", err)
	}
	plan, err := NewPlanner(c, WithSegments(2)).Plan(context.Background(), testGraph(t))
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if plan.Program.String() != legacy.Program.String() {
		t.Errorf("Planner emitted a different program than Parallelize:\n%s\nvs\n%s", plan.Program, legacy.Program)
	}
	if plan.Cost != legacy.Cost {
		t.Errorf("Planner cost %v != Parallelize cost %v", plan.Cost, legacy.Cost)
	}
	if err := Verify(plan, c.M(), 3); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

// PlanBatch over k clusters must build the graph theory exactly once (the
// theory depends only on the graph) and emit, per cluster, the same plan a
// standalone Plan call would.
func TestPlanBatchSharesTheory(t *testing.T) {
	clusters := []*Cluster{
		testCluster(),
		PerGPU(MachineSpec{Type: A100, GPUs: 1}, MachineSpec{Type: P100, GPUs: 1}),
		PerGPU(MachineSpec{Type: V100, GPUs: 2}, MachineSpec{Type: V100, GPUs: 1}),
	}
	p := NewPlanner(clusters[0])

	before := theory.Builds()
	plans, err := p.PlanBatch(context.Background(), testGraph(t), clusters...)
	if err != nil {
		t.Fatalf("PlanBatch: %v", err)
	}
	if built := theory.Builds() - before; built != 1 {
		t.Errorf("batch over %d clusters built the theory %d times, want once", len(clusters), built)
	}
	if len(plans) != len(clusters) {
		t.Fatalf("PlanBatch returned %d plans for %d clusters", len(plans), len(clusters))
	}
	for i, c := range clusters {
		solo, err := NewPlanner(c).Plan(context.Background(), testGraph(t))
		if err != nil {
			t.Fatalf("solo plan for cluster %d: %v", i, err)
		}
		if plans[i].Program.String() != solo.Program.String() {
			t.Errorf("cluster %d: batch plan differs from solo plan", i)
		}
		if err := Verify(plans[i], c.M(), int64(11+i)); err != nil {
			t.Errorf("cluster %d: Verify: %v", i, err)
		}
	}
}

// With no extra clusters, PlanBatch plans the planner's own cluster.
func TestPlanBatchDefaultsToOwnCluster(t *testing.T) {
	c := testCluster()
	plans, err := NewPlanner(c).PlanBatch(context.Background(), testGraph(t))
	if err != nil {
		t.Fatalf("PlanBatch: %v", err)
	}
	if len(plans) != 1 || len(plans[0].Program.Instrs) == 0 {
		t.Fatalf("PlanBatch() = %d plans, want the planner's own cluster planned", len(plans))
	}
}

// cancelGraph is a model big enough that its synthesis runs for seconds —
// room to observe a mid-search cancellation.
func cancelGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return models.Build(models.ModelBERTBase, 2)
}

// Cancelling the context must abort an in-flight synthesis within one
// candidate batch — far sooner than the search would finish on its own.
func TestPlanContextCancelAbortsSearch(t *testing.T) {
	g := cancelGraph(t)
	c := testCluster()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := NewPlanner(c).Plan(ctx, g)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled Plan returned a plan, want an error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled in the chain", err)
	}
	// Generous bound: workers re-check the cancellation latch between
	// candidate batches, so the search must stop within ~one beam level.
	// Uncancelled, this synthesis runs for seconds.
	if elapsed > 2*time.Second {
		t.Errorf("cancelled Plan returned after %v, want prompt abort", elapsed)
	}
}

// WithTimeBudget is context.WithTimeout sugar with the loop's graceful
// degradation intact: an expired budget with no completed plan errors, a
// generous one plans normally.
func TestPlannerTimeBudget(t *testing.T) {
	g := testGraph(t)
	c := testCluster()
	if _, err := NewPlanner(c, WithTimeBudget(time.Nanosecond)).Plan(context.Background(), g); err == nil {
		t.Error("nanosecond budget returned a plan, want an error")
	} else if errors.Is(err, context.Canceled) {
		t.Errorf("nanosecond budget reported cancellation (%v), want budget expiry", err)
	}
	plan, err := NewPlanner(c, WithTimeBudget(time.Minute)).Plan(context.Background(), g)
	if err != nil {
		t.Fatalf("generous budget: %v", err)
	}
	if len(plan.Program.Instrs) == 0 {
		t.Fatal("generous budget produced an empty program")
	}
}

// The functional options must lower onto the same Options struct the legacy
// API uses.
func TestFunctionalOptions(t *testing.T) {
	var got Options
	for _, o := range []Option{
		WithSegments(3), WithMaxIterations(2), WithExactSearch(),
		WithoutPasses(), WithTimeBudget(time.Second), WithWorkers(4),
	} {
		o(&got)
	}
	want := Options{Segments: 3, MaxIterations: 2, ExactSearch: true,
		DisablePasses: true, TimeBudget: time.Second, Workers: 4}
	if got != want {
		t.Errorf("options = %+v, want %+v", got, want)
	}
	var bridged Options
	WithOptions(want)(&bridged)
	if bridged != want {
		t.Errorf("WithOptions = %+v, want %+v", bridged, want)
	}
}

// The binary plan payload must round-trip the full plan — program, ratios,
// segment assignment, cost — against a freshly rebuilt graph, exactly like
// the JSON form.
func TestBinaryPlanRoundTrip(t *testing.T) {
	g := testGraph(t)
	c := testCluster()
	plan, err := Parallelize(g, c, Options{Segments: 2})
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := plan.WriteProgramBinary(&bin); err != nil {
		t.Fatalf("WriteProgramBinary: %v", err)
	}

	g2 := testGraph(t)
	back, err := ReadProgramBinary(bytes.NewReader(bin.Bytes()), g2)
	if err != nil {
		t.Fatalf("ReadProgramBinary: %v", err)
	}
	if back.Program.String() != plan.Program.String() {
		t.Error("binary round-trip changed the program")
	}
	if len(back.Ratios) != len(plan.Ratios) || back.Cost != plan.Cost {
		t.Errorf("binary round-trip changed ratios/cost: %v/%v vs %v/%v",
			back.Ratios, back.Cost, plan.Ratios, plan.Cost)
	}
	if err := Verify(back, c.M(), 21); err != nil {
		t.Errorf("Verify after binary round-trip: %v", err)
	}

	// The program section is a plain dist binary program: DecodeBinary
	// consumes it directly and ignores the trailer.
	prog, err := dist.DecodeBinary(bytes.NewReader(bin.Bytes()), g2)
	if err != nil {
		t.Fatalf("DecodeBinary on the raw payload: %v", err)
	}
	if prog.String() != plan.Program.String() {
		t.Error("DecodeBinary on the raw payload yielded a different program")
	}

	// Corruption in the fixed suffix must fail loudly, not misparse.
	bad := append([]byte(nil), bin.Bytes()...)
	bad[len(bad)-1] ^= 0xff
	if _, err := ReadProgramBinary(bytes.NewReader(bad), testGraph(t)); err == nil || !strings.Contains(err.Error(), "suffix") {
		t.Errorf("corrupt suffix: err = %v, want a suffix complaint", err)
	}
}
