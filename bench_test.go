// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation. Each benchmark regenerates the corresponding
// table/figure via internal/experiments and reports its headline metric as
// a custom unit, so `go test -bench=. -benchmem` reproduces the whole
// evaluation. Heavy figures run at reduced ("quick") scale here; use
// `go run ./cmd/hap-bench` (without -quick) for paper-scale sweeps.
package hap

import (
	"strconv"
	"testing"

	"hap/internal/experiments"
)

var quick = experiments.Config{Quick: true}
var full = experiments.Config{}

func runExperiment(b *testing.B, gen func(experiments.Config) *experiments.Report, cfg experiments.Config) *experiments.Report {
	b.Helper()
	var r *experiments.Report
	for i := 0; i < b.N; i++ {
		r = gen(cfg)
	}
	if r == nil || len(r.Rows) == 0 {
		b.Fatal("experiment produced no rows")
	}
	b.Log("\n" + r.String())
	return r
}

func cell(b *testing.B, r *experiments.Report, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(r.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q not numeric", row, col, r.Rows[row][col])
	}
	return v
}

// BenchmarkTable1Models regenerates Table 1 (benchmark model sizes).
func BenchmarkTable1Models(b *testing.B) {
	r := runExperiment(b, experiments.Table1, full)
	b.ReportMetric(cell(b, r, 0, 2), "VGG19-Mparams")
	b.ReportMetric(cell(b, r, 2, 2), "BERT-Mparams")
}

// BenchmarkFig2ShardingRatios regenerates Fig. 2 (CP vs EV trade-off).
func BenchmarkFig2ShardingRatios(b *testing.B) {
	r := runExperiment(b, experiments.Fig2, quick)
	last := len(r.Rows) - 1
	b.ReportMetric(cell(b, r, last, 3)/cell(b, r, last, 2), "EV/CP-at-high-comp")
	b.ReportMetric(cell(b, r, 0, 2)/cell(b, r, 0, 3), "CP/EV-at-low-comp")
}

// BenchmarkFig4AllGather regenerates Fig. 4 (padded AG vs grouped Broadcast).
func BenchmarkFig4AllGather(b *testing.B) {
	r := runExperiment(b, experiments.Fig4, full)
	b.ReportMetric(cell(b, r, 0, 1), "padded-GBps-even")
	b.ReportMetric(cell(b, r, len(r.Rows)-1, 2), "grouped-GBps-skewed")
}

// BenchmarkFig13Heterogeneous regenerates Fig. 13 (heterogeneous cluster,
// all systems × all models).
func BenchmarkFig13Heterogeneous(b *testing.B) {
	r := runExperiment(b, experiments.Fig13, quick)
	// Headline: HAP speedup over the best finishing DP baseline on VGG19.
	hap := cell(b, r, 0, 2)
	best := 1e18
	for _, col := range []int{3, 4} {
		if v, err := strconv.ParseFloat(r.Rows[0][col], 64); err == nil && v < best {
			best = v
		}
	}
	b.ReportMetric(best/hap, "VGG19-speedup-vs-DP")
}

// BenchmarkFig14Homogeneous regenerates Fig. 14 (homogeneous cluster).
func BenchmarkFig14Homogeneous(b *testing.B) {
	r := runExperiment(b, experiments.Fig14, quick)
	hap := cell(b, r, 0, 2)
	if v, err := strconv.ParseFloat(r.Rows[0][3], 64); err == nil {
		b.ReportMetric(v/hap, "VGG19-speedup-vs-DPEV")
	}
}

// BenchmarkFig15Ablation regenerates Fig. 15 (DP-EV → +Q → +B → +C).
func BenchmarkFig15Ablation(b *testing.B) {
	runExperiment(b, experiments.Fig15, quick)
}

// BenchmarkFig16Concurrent regenerates Fig. 16 (HAP vs concurrent
// subcluster training).
func BenchmarkFig16Concurrent(b *testing.B) {
	r := runExperiment(b, experiments.Fig16, quick)
	b.ReportMetric(cell(b, r, 0, 3), "VGG19-HAP-throughput-pct")
}

// BenchmarkFig17UnevenExperts regenerates Fig. 17 (uneven expert placement).
func BenchmarkFig17UnevenExperts(b *testing.B) {
	r := runExperiment(b, experiments.Fig17, quick)
	// Headline: DeepSpeed/HAP time ratio at a non-multiple expert count.
	for _, row := range r.Rows {
		if row[0] != row[3] { // padded
			hap, err1 := strconv.ParseFloat(row[1], 64)
			ds, err2 := strconv.ParseFloat(row[2], 64)
			if err1 == nil && err2 == nil {
				b.ReportMetric(ds/hap, "DeepSpeed/HAP-at-padding")
				break
			}
		}
	}
}

// BenchmarkFig18CostModel regenerates Fig. 18 (cost-model accuracy).
func BenchmarkFig18CostModel(b *testing.B) {
	r := runExperiment(b, experiments.Fig18, quick)
	last := r.Rows[len(r.Rows)-1]
	if last[0] == "pearson" {
		b.ReportMetric(cell(b, r, len(r.Rows)-1, 2), "pearson-r")
	}
}

// BenchmarkFig19SynthesisTime regenerates Fig. 19 (synthesis time vs depth).
func BenchmarkFig19SynthesisTime(b *testing.B) {
	r := runExperiment(b, experiments.Fig19, quick)
	b.ReportMetric(cell(b, r, len(r.Rows)-1, 1), "synth-sec-max-depth")
}
