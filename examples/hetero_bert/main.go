// Heterogeneous BERT: train a reduced BERT on the paper's mixed testbed
// shape (V100 + P100 machines) and compare HAP's plan against even and
// compute-proportional data parallelism — the Sec. 7.2 scenario.
package main

import (
	"fmt"
	"log"
	"os"

	"hap"
	"hap/internal/baselines"
	"hap/internal/cluster"
	"hap/internal/models"
	"hap/internal/sim"
)

func main() {
	// 2 V100 machines + 6 P100 machines, 1 GPU each (scale with -full).
	k := 1
	if len(os.Args) > 1 && os.Args[1] == "-full" {
		k = 8
	}
	c := cluster.PaperHeterogeneous(k)
	fmt.Print(c)

	cfg := models.BERTBase()
	cfg.Layers = 4
	cfg.Vocab = 8192
	g := models.Training(models.BERT(cfg, 64*c.TotalGPUs()*32))

	plan, err := hap.Parallelize(g, c, hap.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHAP:    %6.1f ms/iter (%d collectives, ratios %.3f)\n",
		sim.IterationTime(c, plan.Program, plan.Ratios, 1)*1e3,
		plan.Program.NumComms(), plan.Ratios[0])

	for _, bl := range []func() (*baselines.Plan, error){
		func() (*baselines.Plan, error) { return baselines.DPEV(g, c) },
		func() (*baselines.Plan, error) { return baselines.DPCP(g, c) },
	} {
		p, err := bl()
		if err != nil {
			log.Fatal(err)
		}
		status := fmt.Sprintf("%6.1f ms/iter", sim.IterationTime(c, p.Program, p.Ratios, 1)*1e3)
		if p.OOM {
			status = "OOM"
		}
		fmt.Printf("%-7s %s\n", p.Name+":", status)
	}

	// Dump a Chrome trace of HAP's iteration for inspection.
	f, err := os.Create("trace.json")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := hap.WriteTrace(f, plan, c, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote trace.json (open in chrome://tracing)")
}
