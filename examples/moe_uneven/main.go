// Uneven expert placement (Sec. 7.6): BERT-MoE with an expert count that
// does not divide the device count, on 2×A100 + 2×P100. HAP shards experts
// unevenly — more experts on the A100s — while a DeepSpeed-style system
// must pad the expert count to a multiple of the device count.
package main

import (
	"fmt"
	"log"

	"hap"
	"hap/internal/baselines"
	"hap/internal/cluster"
	"hap/internal/models"
	"hap/internal/sim"
)

func main() {
	c := cluster.PaperA100P100()
	fmt.Print(c)

	for _, experts := range []int{4, 6, 10} {
		cfg := models.BERTMoE(c.M())
		cfg.Experts = experts
		cfg.Layers = 2
		cfg.Vocab = 8192
		tokens := 256 * experts // keep per-expert load constant
		g := models.Training(models.BERT(cfg, tokens))

		plan, err := hap.Parallelize(g, c, hap.Options{})
		if err != nil {
			log.Fatal(err)
		}
		hapT := sim.IterationTime(c, plan.Program, plan.Ratios, int64(experts))

		padded := baselines.PadExperts(experts, c.M())
		cfg.Experts = padded
		gp := models.Training(models.BERT(cfg, 256*padded))
		ds, err := baselines.DeepSpeed(gp, c)
		if err != nil {
			log.Fatal(err)
		}
		dsT := sim.IterationTime(c, ds.Program, ds.Ratios, int64(experts))

		fmt.Printf("experts=%2d: HAP %6.1f ms/iter | DeepSpeed (padded to %2d) %6.1f ms/iter\n",
			experts, hapT*1e3, padded, dsT*1e3)
	}
}
