// Sufficient factor broadcasting (Sec. 2.5.2): under data parallelism the
// weight gradient of a fully-connected layer is an f×h matrix computed as
// the product of two factors whose size scales with the batch. When the
// batch is small, All-Gathering the factors and recomputing the gradient on
// every device (Fig. 5(c)) moves less data than All-Reducing the gradient.
// HAP explores SFB inside program synthesis via the replicated-MatMul rule;
// this demo contrasts the data-parallel space with SFB (the TAG baseline's
// space) against plain data parallelism.
package main

import (
	"fmt"
	"log"

	"hap/internal/baselines"
	"hap/internal/cluster"
	"hap/internal/collective"
	"hap/internal/graph"
	"hap/internal/models"
)

func run(c *cluster.Cluster, batch, features, hidden int) {
	g := models.Training(models.MLP(batch, features, hidden))

	withSFB, err := baselines.TAG(g, c) // DP space + SFB rules
	if err != nil {
		log.Fatal(err)
	}
	plain, err := baselines.DPEV(g, c) // DP space without SFB
	if err != nil {
		log.Fatal(err)
	}

	replicatedMM := 0
	for _, in := range withSFB.Program.Instrs {
		if !in.IsComm && in.Op == graph.MatMul && !in.FlopsScaled {
			replicatedMM++
		}
	}
	mode := "kept gradient all-reduce"
	if replicatedMM > 0 {
		mode = fmt.Sprintf("applied SFB (%d replicated matmuls)", replicatedMM)
	}
	fmt.Printf("batch=%4d weight=%4dx%-4d → %-36s  DP+SFB %v vs DP %v\n",
		batch, features, hidden, mode,
		counts(withSFB), counts(plain))
}

func counts(p *baselines.Plan) map[collective.Kind]int {
	return p.Program.CollectiveCount()
}

func main() {
	c := cluster.FromGPUs(cluster.DefaultNetwork(),
		cluster.MachineSpec{Type: cluster.V100, GPUs: 1},
		cluster.MachineSpec{Type: cluster.V100, GPUs: 1},
		cluster.MachineSpec{Type: cluster.V100, GPUs: 1},
		cluster.MachineSpec{Type: cluster.V100, GPUs: 1})
	// Small batch, large weight: sufficient factors are tiny → SFB wins.
	run(c, 8, 512, 512)
	// Large batch, small weight: factors dwarf the gradient → SFB declined.
	run(c, 2048, 32, 32)
}
