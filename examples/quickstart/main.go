// Quickstart: parallelize a small MLP training program across a mixed
// V100+P100 pair, print the synthesized SPMD program, verify it is
// semantically equivalent to the single-device program, and simulate an
// iteration.
package main

import (
	"fmt"
	"log"

	"hap"
)

func main() {
	// 1. Write the model for a single imaginary device (Fig. 7).
	g := hap.NewGraph()
	x := g.AddPlaceholder("x", 0, 512, 784)
	w1 := g.AddParameter("w1", 784, 256)
	w2 := g.AddParameter("w2", 256, 10)
	h := g.AddOp(hap.ReLU, g.AddOp(hap.MatMul, x, w1))
	logits := g.AddOp(hap.MatMul, h, w2)
	g.SetLoss(g.AddOp(hap.Sum, g.AddScale(logits, 1.0/512)))
	if err := hap.Backward(g); err != nil {
		log.Fatal(err)
	}

	// 2. Describe the heterogeneous cluster.
	c := hap.PerGPU(
		hap.MachineSpec{Type: hap.V100, GPUs: 1},
		hap.MachineSpec{Type: hap.P100, GPUs: 1},
	)
	fmt.Print(c)

	// 3. Let HAP synthesize the distributed program and sharding ratios.
	plan, err := hap.Parallelize(g, c, hap.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSPMD program (modeled %.2f ms/iteration):\n%s", plan.Cost*1e3, plan.Program)
	fmt.Printf("sharding ratios: %.3f\n", plan.Ratios[0])

	// 4. Prove it computes the same thing as the single-device program.
	if err := hap.Verify(plan, c.M(), 42); err != nil {
		log.Fatalf("equivalence check failed: %v", err)
	}
	fmt.Println("equivalence check: ok (distributed ≡ single-device)")

	// 5. Simulate one iteration on the modeled cluster.
	fmt.Printf("simulated iteration time: %.2f ms\n", hap.Simulate(plan, c, 1)*1e3)
}
