// The context-aware planning API: a reusable Planner bound to a cluster,
// configured with functional options, driving the hapopt loop under a
// context.Context. This is the primary entry point; Parallelize survives as
// a thin deprecated shim over it.
//
//	p := hap.NewPlanner(c, hap.WithSegments(4), hap.WithTimeBudget(time.Minute))
//	plan, err := p.Plan(ctx, g)
//	plans, err := p.PlanBatch(ctx, g, c2, c3)   // theory built once
//
// Cancelling ctx aborts an in-flight synthesis within one candidate batch;
// WithTimeBudget is sugar for context.WithTimeout around every Plan call,
// with the hapopt loop's graceful degradation (an expired budget returns the
// best plan found so far) preserved.
package hap

import (
	"context"
	"fmt"
	"time"

	"hap/internal/cluster"
	"hap/internal/hapopt"
	"hap/internal/obs"
	"hap/internal/segment"
	"hap/internal/synth"
	"hap/internal/theory"
)

// Option configures a Planner (functional options over the legacy Options
// struct, which remains the underlying representation).
type Option func(*Options)

// WithSegments requests per-segment sharding ratios (Sec. 5.2).
func WithSegments(n int) Option { return func(o *Options) { o.Segments = n } }

// WithMaxIterations bounds the Q↔B alternation (default 4).
func WithMaxIterations(n int) Option { return func(o *Options) { o.MaxIterations = n } }

// WithExactSearch forces exact A* instead of the automatic exact/beam choice.
func WithExactSearch() Option { return func(o *Options) { o.ExactSearch = true } }

// WithoutPasses skips the post-synthesis optimization pipeline.
func WithoutPasses() Option { return func(o *Options) { o.DisablePasses = true } }

// WithTimeBudget bounds each Plan/PlanBatch call's wall-clock time: the call
// runs under context.WithTimeout(ctx, d), and an expired budget returns the
// best plan the loop found so far (or an error when none completed).
func WithTimeBudget(d time.Duration) Option { return func(o *Options) { o.TimeBudget = d } }

// WithWorkers bounds the beam synthesizer's parallelism (0 = GOMAXPROCS).
// Plans are byte-identical for every worker count.
func WithWorkers(n int) Option { return func(o *Options) { o.Workers = n } }

// WithSeed supplies a donor plan for incremental synthesis: searches are
// seeded from donorPlan when donorG is structurally close enough to the
// planned graph, and silently fall back to cold synthesis otherwise (see
// Options.SeedGraph).
func WithSeed(donorG *Graph, donorPlan *Plan) Option {
	return func(o *Options) { o.SeedGraph, o.SeedPlan = donorG, donorPlan }
}

// WithOptions adopts a legacy Options struct wholesale — the bridge for
// callers migrating from Parallelize.
func WithOptions(opt Options) Option { return func(o *Options) { *o = opt } }

// Planner plans distributed programs for one cluster. It is cheap to build,
// immutable, and safe for concurrent use; synthesis state lives per call.
type Planner struct {
	c   *Cluster
	opt Options
}

// NewPlanner binds a planner to a cluster with the given options.
func NewPlanner(c *Cluster, opts ...Option) *Planner {
	p := &Planner{c: c}
	for _, o := range opts {
		o(&p.opt)
	}
	return p
}

// searchCtx applies the TimeBudget sugar: a budgeted planner runs every call
// under context.WithTimeout.
func (p *Planner) searchCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if p.opt.TimeBudget > 0 {
		return context.WithTimeout(ctx, p.opt.TimeBudget)
	}
	return context.WithCancel(ctx)
}

// hapoptOptions lowers the planner's options for one optimization run. The
// time budget is deliberately absent: it travels on the context.
func (p *Planner) hapoptOptions(th *theory.Theory, workers int) hapopt.Options {
	o := hapopt.Options{
		MaxIterations: p.opt.MaxIterations,
		Segments:      p.opt.Segments,
		Synth:         synth.Auto(),
		DisablePasses: p.opt.DisablePasses,
		Theory:        th,
	}
	if p.opt.ExactSearch {
		o.Synth = synth.Options{}
	}
	o.Synth.Workers = workers
	if p.opt.SeedPlan != nil && p.opt.SeedGraph != nil {
		o.SeedGraph = p.opt.SeedGraph
		o.SeedProgram = p.opt.SeedPlan.Program
		o.MaxSeedDistance = p.opt.MaxSeedDistance
	}
	return o
}

func (p *Planner) plan(ctx context.Context, g *Graph, c *cluster.Cluster, th *theory.Theory, workers int) (*Plan, error) {
	res, err := hapopt.Optimize(ctx, g, c, p.hapoptOptions(th, workers))
	if err != nil {
		return nil, err
	}
	// The serving path's "verify" phase: the structural validator gating
	// every plan handed out. (Numeric verification — hap.Verify — runs in
	// the background replanner, which records its own verify span.)
	vs := obs.SpanFromContext(ctx).Child("verify")
	vs.SetAttrStr("kind", "structural")
	verr := res.Program.Validate()
	vs.End()
	if verr != nil {
		return nil, fmt.Errorf("hap: synthesized program is ill-formed: %w", verr)
	}
	return &Plan{
		Program:       res.Program,
		Ratios:        res.Ratios,
		Cost:          res.Cost,
		SynthesisTime: res.Elapsed.Seconds(),
		Passes:        res.Passes,
		Seeded:        res.Seeded,
		SeedDistance:  res.SeedDistance,
	}, nil
}

// Plan synthesizes a distributed plan for g on the planner's cluster.
// Cancelling ctx aborts an in-flight search within one candidate batch.
func (p *Planner) Plan(ctx context.Context, g *Graph) (*Plan, error) {
	ctx, cancel := p.searchCtx(ctx)
	defer cancel()
	return p.plan(ctx, g, p.c, nil, p.opt.Workers)
}

// PlanBatch synthesizes one plan per cluster for the same graph — the
// paper's heterogeneity scenario: which of my clusters runs this model best?
// The graph's background theory is constructed once and shared by every
// cluster's search (it depends only on the graph), the searches run
// concurrently with the worker budget split across them, and each returned
// plan is byte-identical to what Plan would emit for that cluster alone.
// When no clusters are given, the planner's own cluster is planned.
//
// On failure the error names the first failing cluster, and the returned
// slice still carries every plan that did complete (nil for the failed
// clusters) — one starved cluster under a shared time budget must not throw
// away its siblings' finished work.
func (p *Planner) PlanBatch(ctx context.Context, g *Graph, clusters ...*Cluster) ([]*Plan, error) {
	if len(clusters) == 0 {
		clusters = []*Cluster{p.c}
	}
	ctx, cancel := p.searchCtx(ctx)
	defer cancel()

	// Prepare the graph once — segment assignment mutates g, so it must not
	// race across the concurrent per-cluster runs — then share the theory.
	ts := obs.SpanFromContext(ctx).Child("theory")
	if p.opt.Segments > 1 {
		segment.Assign(g, p.opt.Segments)
	} else {
		g.SegmentOf = nil
	}
	th := theory.New(g)
	ts.SetAttrInt("nodes", int64(g.NumNodes()))
	ts.End()
	per := hapopt.SplitWorkers(p.opt.Workers, len(clusters))

	plans := make([]*Plan, len(clusters))
	errs := make([]error, len(clusters))
	done := make(chan int, len(clusters))
	for i, c := range clusters {
		go func(i int, c *cluster.Cluster) {
			plans[i], errs[i] = p.plan(ctx, g, c, th, per)
			done <- i
		}(i, c)
	}
	for range clusters {
		<-done
	}
	for i, err := range errs {
		if err != nil {
			return plans, fmt.Errorf("hap: batch cluster %d/%d: %w", i+1, len(clusters), err)
		}
	}
	return plans, nil
}
