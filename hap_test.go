package hap

import (
	"bytes"
	"strings"
	"testing"
)

func testCluster() *Cluster {
	return PerGPU(
		MachineSpec{Type: V100, GPUs: 1},
		MachineSpec{Type: P100, GPUs: 1},
	)
}

func testGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	x := g.AddPlaceholder("x", 0, 64, 32)
	w1 := g.AddParameter("w1", 32, 48)
	w2 := g.AddParameter("w2", 48, 8)
	h := g.AddOp(ReLU, g.AddOp(MatMul, x, w1))
	g.SetLoss(g.AddOp(Sum, g.AddScale(g.AddOp(MatMul, h, w2), 1.0/64)))
	if err := Backward(g); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestParallelizeEndToEnd(t *testing.T) {
	g := testGraph(t)
	c := testCluster()
	plan, err := Parallelize(g, c, Options{})
	if err != nil {
		t.Fatalf("Parallelize: %v", err)
	}
	if plan.Cost <= 0 || len(plan.Program.Instrs) == 0 {
		t.Fatal("degenerate plan")
	}
	if err := Verify(plan, c.M(), 5); err != nil {
		t.Errorf("Verify: %v", err)
	}
	if s := Simulate(plan, c, 1); s < plan.Cost {
		t.Errorf("simulated %v below analytic %v", s, plan.Cost)
	}
}

func TestParallelizeExactSearch(t *testing.T) {
	g := testGraph(t)
	plan, err := Parallelize(g, testCluster(), Options{ExactSearch: true})
	if err != nil {
		t.Fatalf("Parallelize exact: %v", err)
	}
	if err := Verify(plan, 2, 9); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestWriteTraceAPI(t *testing.T) {
	g := testGraph(t)
	c := testCluster()
	plan, err := Parallelize(g, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, plan, c, 1); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Error("trace missing traceEvents")
	}
}

func TestHeterogeneousBuilder(t *testing.T) {
	c := Heterogeneous(
		MachineSpec{Type: V100, GPUs: 8},
		MachineSpec{Type: P100, GPUs: 8},
	)
	if c.M() != 2 || c.TotalGPUs() != 16 {
		t.Errorf("M=%d GPUs=%d", c.M(), c.TotalGPUs())
	}
}
