// Binary plan serialization for the serving path: the program travels as
// dist.EncodeBinary bytes (~20× smaller than JSON at model scale), followed
// by a small JSON trailer carrying the plan metadata the program format does
// not cover (sharding ratios, segment assignment, modeled cost).
//
// Layout:
//
//	EncodeBinary(program) · trailer JSON · uint32 trailer length (BE) · "HAPT"
//
// The program section comes first and is self-delimiting, so a reader that
// only wants the program can hand the whole payload to dist.DecodeBinary —
// trailing bytes are ignored. ReadProgramBinary locates the trailer from the
// fixed-size suffix and reconstructs the full Plan.

package hap

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"hap/internal/dist"
)

// binPlanMagic terminates every binary plan payload.
var binPlanMagic = [4]byte{'H', 'A', 'P', 'T'}

// planTrailer is the JSON metadata appended after the binary program — the
// planJSON fields that EncodeBinary does not carry.
type planTrailer struct {
	Ratios        [][]float64 `json:"ratios"`
	SegmentOf     []int       `json:"segment_of,omitempty"`
	Cost          float64     `json:"cost"`
	SynthesisTime float64     `json:"synthesis_time,omitempty"`
}

// WriteProgramBinary serializes the plan in the compact binary wire form —
// the serving counterpart of WriteProgram. The payload's program section
// decodes directly with dist.DecodeBinary.
func (p *Plan) WriteProgramBinary(w io.Writer) error {
	var buf bytes.Buffer
	if err := p.Program.EncodeBinary(&buf); err != nil {
		return err
	}
	tr, err := json.Marshal(planTrailer{
		Ratios:        p.Ratios,
		SegmentOf:     p.Program.Graph.SegmentOf,
		Cost:          p.Cost,
		SynthesisTime: p.SynthesisTime,
	})
	if err != nil {
		return err
	}
	buf.Write(tr)
	var suffix [8]byte
	binary.BigEndian.PutUint32(suffix[:4], uint32(len(tr)))
	copy(suffix[4:], binPlanMagic[:])
	buf.Write(suffix[:])
	_, err = w.Write(buf.Bytes())
	return err
}

// ReadProgramBinary loads a plan written by WriteProgramBinary, binding its
// program to g — the same contract as ReadProgram, including adopting the
// plan's segment assignment onto g and leaving g untouched on failure.
func ReadProgramBinary(r io.Reader, g *Graph) (*Plan, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("hap: read binary plan: %w", err)
	}
	if len(data) < 8 || !bytes.Equal(data[len(data)-4:], binPlanMagic[:]) {
		return nil, fmt.Errorf("hap: read binary plan: missing %q suffix (not written by WriteProgramBinary?)", binPlanMagic[:])
	}
	// The length field is untrusted: compare in uint64 so a huge value cannot
	// wrap through int conversion on 32-bit platforms and dodge the check.
	tlen32 := binary.BigEndian.Uint32(data[len(data)-8 : len(data)-4])
	if uint64(tlen32)+8 > uint64(len(data)) {
		return nil, fmt.Errorf("hap: read binary plan: trailer length %d exceeds the %d-byte payload", tlen32, len(data))
	}
	progEnd := len(data) - 8 - int(tlen32)
	var tr planTrailer
	if err := json.Unmarshal(data[progEnd:len(data)-8], &tr); err != nil {
		return nil, fmt.Errorf("hap: read binary plan: trailer: %w", err)
	}
	if len(tr.SegmentOf) != 0 && len(tr.SegmentOf) != g.NumNodes() {
		return nil, fmt.Errorf("hap: read binary plan: segment assignment covers %d nodes, the graph has %d", len(tr.SegmentOf), g.NumNodes())
	}
	// Adopt the segment assignment only if the whole load succeeds (see
	// ReadProgram): the program's embedded fingerprint covers SegmentOf.
	prevSegments := g.SegmentOf
	g.SegmentOf = tr.SegmentOf
	prog, err := dist.DecodeBinary(bytes.NewReader(data[:progEnd]), g)
	if err != nil {
		g.SegmentOf = prevSegments
		return nil, fmt.Errorf("hap: read binary plan: %w", err)
	}
	if err := validateRatios(tr.Ratios, g.NumSegments()); err != nil {
		g.SegmentOf = prevSegments
		return nil, fmt.Errorf("hap: read binary plan: %w", err)
	}
	return &Plan{
		Program:       prog,
		Ratios:        tr.Ratios,
		Cost:          tr.Cost,
		SynthesisTime: tr.SynthesisTime,
	}, nil
}
