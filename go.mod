module hap

go 1.21
