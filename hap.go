// Package hap is an automated system for SPMD training of deep neural
// networks on heterogeneous GPU clusters, reproducing "HAP: SPMD DNN
// Training on Heterogeneous GPU Clusters with Automated Program Synthesis"
// (EuroSys 2024).
//
// Given a single-device training graph and a cluster specification, HAP
// jointly decides the tensor sharding strategy (by synthesizing a
// distributed program with an A*-guided syntax-guided search), the sharding
// ratios across heterogeneous devices (by linear programming), and the
// communication method per collective (padded All-Gather vs grouped
// Broadcast, sufficient factor broadcasting) — Sec. 3–5 of the paper.
//
// The API centers on the context-aware Planner: build a model graph,
// describe the cluster, plan:
//
//	g := hap.NewGraph()
//	x := g.AddPlaceholder("x", 0, 512, 784)
//	w := g.AddParameter("w", 784, 10)
//	g.SetLoss(g.AddOp(hap.MatMul, x, w)) // ... then Backward(g)
//	p := hap.NewPlanner(hap.Heterogeneous(...))
//	plan, err := p.Plan(ctx, g)
//
// (hap.Parallelize(g, c, Options{}) remains as a deprecated shim.)
//
// The plan contains the SPMD program every device executes, the per-segment
// sharding ratios, and the modeled per-iteration time. The numeric runtime
// (hap.Verify) checks the synthesized program is semantically equivalent to
// the single-device graph, and the simulator (hap.Simulate) reports the
// "actual" time on the modeled cluster.
package hap

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"hap/internal/autodiff"
	"hap/internal/cluster"
	"hap/internal/dist"
	"hap/internal/graph"
	"hap/internal/passes"
	"hap/internal/runtime"
	"hap/internal/sim"
)

// Re-exported graph construction API.
type (
	// Graph is a single-device training program.
	Graph = graph.Graph
	// NodeID names a tensor in the graph.
	NodeID = graph.NodeID
	// OpKind is a single-device operator.
	OpKind = graph.OpKind
	// Cluster describes the devices and interconnect.
	Cluster = cluster.Cluster
	// DeviceType is a GPU model.
	DeviceType = cluster.DeviceType
	// MachineSpec describes one machine for cluster builders.
	MachineSpec = cluster.MachineSpec
	// Program is a synthesized SPMD program.
	Program = dist.Program
	// PassStats reports what the post-synthesis optimization pipeline did
	// to a plan's program (see internal/passes).
	PassStats = passes.Stats
)

// Common operator kinds (see internal/graph for the full set).
const (
	MatMul  = graph.MatMul
	Add     = graph.Add
	Mul     = graph.Mul
	ReLU    = graph.ReLU
	GeLU    = graph.GeLU
	Sigmoid = graph.Sigmoid
	Softmax = graph.Softmax
	Sum     = graph.Sum
)

// GPU models of the paper's testbed.
var (
	V100 = cluster.V100
	P100 = cluster.P100
	A100 = cluster.A100
)

// NewGraph returns an empty single-device graph.
func NewGraph() *Graph { return graph.New() }

// Backward appends the training backward pass (parameter gradients).
func Backward(g *Graph) error { return autodiff.Backward(g) }

// Heterogeneous builds a cluster with one machine-level virtual device per
// machine, like the paper's testbed.
func Heterogeneous(machines ...MachineSpec) *Cluster {
	return cluster.FromMachines(cluster.DefaultNetwork(), 0, machines...)
}

// PerGPU builds a cluster with one virtual device per GPU.
func PerGPU(machines ...MachineSpec) *Cluster {
	return cluster.FromGPUs(cluster.DefaultNetwork(), machines...)
}

// Options tunes Parallelize.
type Options struct {
	// Segments > 1 enables per-segment sharding ratios (Sec. 5.2).
	Segments int
	// MaxIterations bounds the Q↔B alternation (default 4).
	MaxIterations int
	// ExactSearch forces exact A* (default: automatic — exact for small
	// graphs, beam search for model-scale ones).
	ExactSearch bool
	// DisablePasses skips the post-synthesis optimization pipeline
	// (collective fusion, collective CSE, DCE); the pipeline runs by
	// default on every synthesized program.
	DisablePasses bool
	// TimeBudget bounds the whole optimization's wall-clock time
	// (0 = unlimited): every program search runs under the budget's
	// remainder, and an expired budget returns the best plan found so far —
	// or an error when none completed. The synthesizer's expansion limits
	// bound memory, not time.
	TimeBudget time.Duration
	// Workers bounds the beam synthesizer's per-level parallelism
	// (0 = GOMAXPROCS, 1 = serial). Any worker count yields a byte-identical
	// plan: the parallel beam merges candidates in a deterministic order, so
	// this knob trades only latency, never plan content — it is deliberately
	// not part of hap-serve's cache key.
	Workers int
	// SeedGraph and SeedPlan supply a donor plan for incremental synthesis:
	// when the donor graph is structurally close enough to the planned graph
	// (normalized segment-level diff ≤ MaxSeedDistance), the search is seeded
	// from the donor plan — decisions in the unchanged region are pinned and
	// only the changed region is searched. A donor too far away silently
	// degrades to cold synthesis; exact A* ignores seeds. Both nil by
	// default. Seed inputs are deliberately not part of hap-serve's cache
	// key: like Workers, they trade latency, never plan validity.
	SeedGraph *Graph
	SeedPlan  *Plan
	// MaxSeedDistance overrides the incremental-synthesis cutoff
	// (0 = the default, 0.25).
	MaxSeedDistance float64
}

// Plan is the result of Parallelize: what every worker runs.
type Plan struct {
	// Program is the SPMD program executed identically on all devices.
	Program *Program
	// Ratios are the sharding ratios B[segment][device].
	Ratios [][]float64
	// Cost is the modeled per-iteration time in seconds.
	Cost float64
	// SynthesisTime is the time program synthesis took.
	SynthesisTime float64
	// Passes reports the post-synthesis pass pipeline's rewrites (zero when
	// Options.DisablePasses is set). In-memory only: not serialized by
	// WriteProgram.
	Passes PassStats
	// Seeded reports whether the plan came out of a seeded (incremental)
	// search rather than a cold one, and SeedDistance the donor's normalized
	// structural distance. In-memory only: not serialized by WriteProgram —
	// a reloaded plan is just a plan, regardless of how it was found.
	Seeded       bool
	SeedDistance float64
}

// Parallelize runs the full HAP pipeline: iterative program synthesis and
// sharding-ratio optimization (Sec. 3.1).
//
// Deprecated: use NewPlanner(c, WithOptions(opt)).Plan(ctx, g), which takes
// a context.Context for cancellation and timeouts and amortizes setup across
// calls. Parallelize is a thin shim over the Planner and never goes away.
func Parallelize(g *Graph, c *Cluster, opt Options) (*Plan, error) {
	return NewPlanner(c, WithOptions(opt)).Plan(context.Background(), g)
}

// planJSON is the serialized form of a Plan. The graph travels separately:
// ReadProgram re-binds the program to a caller-provided graph. SegmentOf is
// carried because Parallelize(Segments > 1) assigns it internally — a fresh
// process rebuilding the model graph has no way to reproduce it.
type planJSON struct {
	Program       json.RawMessage `json:"program"`
	Ratios        [][]float64     `json:"ratios"`
	SegmentOf     []int           `json:"segment_of,omitempty"`
	Cost          float64         `json:"cost"`
	SynthesisTime float64         `json:"synthesis_time,omitempty"`
}

// WriteProgram serializes the plan — the SPMD program, the sharding ratios,
// and the modeled cost — as JSON, so plans can be exported, diffed, and
// re-loaded without re-running synthesis.
func (p *Plan) WriteProgram(w io.Writer) error {
	var buf bytes.Buffer
	if err := p.Program.Encode(&buf); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(planJSON{
		Program:       buf.Bytes(),
		Ratios:        p.Ratios,
		SegmentOf:     p.Program.Graph.SegmentOf,
		Cost:          p.Cost,
		SynthesisTime: p.SynthesisTime,
	})
}

// ReadProgram loads a plan written by Plan.WriteProgram, binding its program
// to g (which must be the graph the plan was synthesized for) and validating
// it structurally. The plan's segment assignment is adopted onto g, so plans
// produced with Options.Segments > 1 re-load against a freshly built graph.
func ReadProgram(r io.Reader, g *Graph) (*Plan, error) {
	var pj planJSON
	if err := json.NewDecoder(r).Decode(&pj); err != nil {
		return nil, fmt.Errorf("hap: read plan: %w", err)
	}
	if len(pj.Program) == 0 {
		return nil, fmt.Errorf("hap: read plan: input has no %q section (not written by Plan.WriteProgram?)", "program")
	}
	if len(pj.SegmentOf) != 0 && len(pj.SegmentOf) != g.NumNodes() {
		return nil, fmt.Errorf("hap: read plan: segment assignment covers %d nodes, the graph has %d", len(pj.SegmentOf), g.NumNodes())
	}
	// Adopt the plan's segment assignment only if the whole load succeeds: a
	// failed ReadProgram must not leave the caller's graph mutated (a plan
	// already bound to g would then index ratio rows with a stale assignment).
	prevSegments := g.SegmentOf
	g.SegmentOf = pj.SegmentOf
	prog, err := dist.Decode(bytes.NewReader(pj.Program), g)
	if err != nil {
		g.SegmentOf = prevSegments
		return nil, fmt.Errorf("hap: read plan: %w", err)
	}
	if err := validateRatios(pj.Ratios, g.NumSegments()); err != nil {
		g.SegmentOf = prevSegments
		return nil, fmt.Errorf("hap: read plan: %w", err)
	}
	return &Plan{
		Program:       prog,
		Ratios:        pj.Ratios,
		Cost:          pj.Cost,
		SynthesisTime: pj.SynthesisTime,
	}, nil
}

// validateRatios rejects sharding-ratio matrices that would crash or
// silently corrupt Verify/Simulate: the plan must carry one row per model
// segment, rectangular and non-empty, with non-negative finite entries
// summing to 1 per row.
func validateRatios(b [][]float64, segments int) error {
	if len(b) != segments {
		return fmt.Errorf("ratios have %d segments, the graph has %d", len(b), segments)
	}
	m := 0
	for k, row := range b {
		if k == 0 {
			m = len(row)
		}
		if len(row) == 0 || len(row) != m {
			return fmt.Errorf("ratios row %d has %d devices, want %d", k, len(row), m)
		}
		sum := 0.0
		for j, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("ratios[%d][%d] = %v is not a valid ratio", k, j, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("ratios row %d sums to %v, want 1", k, sum)
		}
	}
	return nil
}

// Verify numerically checks that the plan's program is semantically
// equivalent to the single-device graph (Sec. 4.2), executing both on
// random data across m simulated devices.
func Verify(plan *Plan, devices int, seed int64) error {
	return runtime.VerifyEquivalence(plan.Program, devices, plan.Ratios, seed)
}

// Simulate runs the plan on the modeled cluster and returns the simulated
// per-iteration time in seconds (kernel overheads, barriers and link noise
// included — the analytic Cost underestimates this; Fig. 18).
func Simulate(plan *Plan, c *Cluster, seed int64) float64 {
	return sim.IterationTime(c, plan.Program, plan.Ratios, seed)
}

// WriteTrace writes a Chrome-trace JSON of one simulated iteration, like
// the artifact's trace.json.gz.
func WriteTrace(w io.Writer, plan *Plan, c *Cluster, seed int64) error {
	r := sim.Run(c, plan.Program, plan.Ratios, sim.Options{Seed: seed})
	return sim.WriteTrace(w, r.Events)
}
